// Command themis-cql runs an ad-hoc CQL query against synthetic sources
// and streams results — with their SIC values — to stdout.
//
// By default the query runs on a single simulated THEMIS node in virtual
// time, the quickest way to see fair shedding react to overload:
//
//	themis-cql -query 'Select Avg(t.v) From Src[Range 1 sec]' \
//	           -rate 400 -capacity 200 -duration 30s
//
// With -net the same statement is parsed, partitioned into fragments and
// deployed across live themis-node TCP servers; derived batches flow
// node→node over the binary wire protocol and the per-query SIC streams
// back once per second:
//
//	themis-node -listen 127.0.0.1:7101 & # ×3
//	themis-cql -net 127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103 \
//	           -query 'Select Avg(t.v) From AllSrc[Range 1 sec]' \
//	           -fragments 3 -rate 40 -duration 20s
//
// With capacity below the source rate the nodes shed; every printed
// result or SIC line reports the information content actually processed,
// the user feedback loop of §1.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	themis "repro"
	"repro/internal/federation"
	"repro/internal/stream"
	"repro/internal/transport"
)

// timedSubmit is one scheduled mid-run submission (-submit-at).
type timedSubmit struct {
	at  time.Duration
	cql string
}

// timedRetract is one scheduled mid-run retract (-retract-at).
type timedRetract struct {
	at time.Duration
	q  stream.QueryID
}

// splitSchedule parses the shared "dur:payload" schedule syntax.
func splitSchedule(v string) (time.Duration, string, error) {
	parts := strings.SplitN(v, ":", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return 0, "", fmt.Errorf("want 'duration:value', got %q", v)
	}
	d, err := time.ParseDuration(strings.TrimSpace(parts[0]))
	if err != nil {
		return 0, "", err
	}
	if d < 0 {
		return 0, "", fmt.Errorf("negative schedule time %v", d)
	}
	return d, strings.TrimSpace(parts[1]), nil
}

func main() {
	queryText := flag.String("query", "Select Avg(t.v) From Src[Range 1 sec]", "CQL query (Table 1 syntax)")
	dataset := flag.String("dataset", "gaussian", "source dataset: gaussian|uniform|exponential|mixed|planetlab")
	rate := flag.Float64("rate", 400, "tuples/sec per source")
	capacity := flag.Float64("capacity", 200, "node capacity in tuples/sec (local mode)")
	duration := flag.Duration("duration", 30*time.Second, "run length")
	quietFlag := flag.Bool("summary", false, "suppress per-result/per-SIC lines, print only the summary")

	// Networked mode.
	netAddrs := flag.String("net", "", "comma-separated themis-node addresses; deploys onto the live federation instead of the simulator")
	fragments := flag.Int("fragments", 1, "number of fragments to partition the query into (-net mode; -submit-at submissions use it in both modes)")
	placement := flag.String("placement", "round-robin", "fragment site assignment: round-robin|uniform|zipf (-net mode)")
	warmup := flag.Duration("warmup", 0, "measurement warmup (-net mode; defaults to duration/4)")
	batches := flag.Float64("batches", 5, "source batches/sec (-net mode)")
	stw := flag.Duration("stw", 10*time.Second, "source time window (-net mode)")
	interval := flag.Duration("interval", 250*time.Millisecond, "shedding/update interval (-net mode)")
	seed := flag.Int64("seed", 1, "deployment seed (-net mode)")
	checkpoint := flag.Duration("checkpoint", 0, "operator-state checkpoint cadence; failure recovery restores windows from the newest snapshot instead of refilling them (-net mode; 0 disables)")

	// Live query churn: mid-run submissions and retracts, in both modes.
	// The initial -query is query 0; scheduled submissions are numbered
	// 1, 2, … in schedule order.
	var submits []timedSubmit
	flag.Func("submit-at", "submit a query mid-run as 'dur:CQL', e.g. '5s:Select Count(t.v) From Src[Range 1 sec]' (repeatable; uses -fragments/-dataset/-rate/-batches)", func(v string) error {
		d, cqlText, err := splitSchedule(v)
		if err != nil {
			return err
		}
		submits = append(submits, timedSubmit{at: d, cql: cqlText})
		return nil
	})
	var retracts []timedRetract
	flag.Func("retract-at", "retract a query mid-run as 'dur:queryID', e.g. '10s:0' (repeatable)", func(v string) error {
		d, qs, err := splitSchedule(v)
		if err != nil {
			return err
		}
		q, err := strconv.Atoi(qs)
		if err != nil {
			return fmt.Errorf("query id %q: %w", qs, err)
		}
		retracts = append(retracts, timedRetract{at: d, q: stream.QueryID(q)})
		return nil
	})
	flag.Parse()

	var ds themis.Dataset
	switch strings.ToLower(*dataset) {
	case "gaussian":
		ds = themis.Gaussian
	case "uniform":
		ds = themis.Uniform
	case "exponential":
		ds = themis.Exponential
	case "mixed":
		ds = themis.Mixed
	case "planetlab":
		ds = themis.PlanetLab
	default:
		fmt.Fprintf(os.Stderr, "themis-cql: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	if *netAddrs != "" {
		runNetworked(*netAddrs, *queryText, int(ds), *fragments, *placement,
			*rate, *batches, *duration, *warmup, *stw, *interval, *checkpoint, *seed, *quietFlag,
			submits, retracts)
		return
	}

	plan, err := themis.ParseQuery(*queryText, themis.DefaultCatalog(ds))
	if err != nil {
		fmt.Fprintf(os.Stderr, "themis-cql: %v\n", err)
		os.Exit(2)
	}

	cfg := themis.Defaults()
	cfg.Duration = themis.Duration(duration.Milliseconds())
	cfg.Warmup = cfg.Duration / 5
	// The scheduled churn replays as deterministic engine events: one
	// tick per shedding interval, retract events before submissions at
	// the same offset (mirroring the engine's within-event order).
	for _, r := range retracts {
		cfg.QueryChurn = append(cfg.QueryChurn, federation.QueryChurnEvent{
			Tick:    r.at.Milliseconds() / int64(cfg.Interval),
			Retract: []stream.QueryID{r.q},
		})
	}
	for _, s := range submits {
		// Same -fragments as -net mode, so a local replay mirrors the
		// networked schedule plan-for-plan. The local testbed has one
		// node, so multi-fragment submissions cannot place there; they
		// are counted as skipped and reported after the run.
		cfg.QueryChurn = append(cfg.QueryChurn, federation.QueryChurnEvent{
			Tick:   s.at.Milliseconds() / int64(cfg.Interval),
			Submit: []federation.QuerySubmit{{CQL: s.cql, Fragments: *fragments, Dataset: int(ds), Rate: *rate}},
		})
	}
	engine, node := themis.LocalTestbed(cfg, *capacity)
	qid, err := engine.DeployQuery(plan, []themis.NodeID{node}, *rate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "themis-cql: %v\n", err)
		os.Exit(1)
	}
	if !*quietFlag {
		engine.OnResult(qid, func(now themis.Time, tuples []themis.Tuple) {
			for _, t := range tuples {
				var vals []string
				for _, v := range t.V {
					vals = append(vals, fmt.Sprintf("%.3f", v))
				}
				fmt.Printf("t=%6.2fs  result=[%s]  tuple-SIC=%.5f\n",
					float64(now)/1000, strings.Join(vals, ", "), t.SIC)
			}
		})
	}

	res := engine.Run()
	ns := res.Nodes[0]
	fmt.Printf("\n%s (%s)\n", plan.Type, *queryText)
	if len(res.Queries) == 1 {
		fmt.Printf("mean SIC over run: %.3f   (1.0 = perfect processing)\n", res.Queries[0].MeanSIC)
	} else {
		// A churn schedule ran: report the whole dynamic workload.
		for _, q := range res.Queries {
			fmt.Printf("query %d (%s) mean SIC: %.3f   (1.0 = perfect processing)\n", q.ID, q.Type, q.MeanSIC)
		}
		fmt.Printf("fairness (Jain): %.3f\n", res.Jain)
	}
	if skipped := engine.SkippedSubmits(); skipped > 0 {
		fmt.Fprintf(os.Stderr, "themis-cql: %d scheduled submission(s) could not be applied\n", skipped)
	}
	if skipped := engine.SkippedRetracts(); skipped > 0 {
		fmt.Fprintf(os.Stderr, "themis-cql: %d scheduled retract(s) named a query that was not live\n", skipped)
	}
	fmt.Printf("tuples: %d arrived, %d shed (%.0f%%), %d shedder invocations\n",
		ns.ArrivedTuples, ns.ShedTuples,
		100*float64(ns.ShedTuples)/float64(max64(ns.ArrivedTuples, 1)),
		ns.ShedInvocations)
}

// runNetworked deploys the statement across live themis-node servers and
// streams per-query SIC values while the run progresses. Scheduled
// submissions and retracts fire on wall-clock timers relative to the
// run start: queries arrive and depart while the federation keeps
// ticking.
func runNetworked(addrList, queryText string, dataset, fragments int, placement string,
	rate, batchesPerSec float64, duration, warmup time.Duration,
	stw, interval, checkpoint time.Duration, seed int64, quiet bool,
	submits []timedSubmit, retracts []timedRetract) {
	addrs := strings.Split(addrList, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	if warmup <= 0 {
		warmup = duration / 4
	}

	ctrl, err := transport.NewController(transport.ControllerConfig{
		STW:        stream.Duration(stw.Milliseconds()),
		Interval:   stream.Duration(interval.Milliseconds()),
		Seed:       seed,
		Placement:  placement,
		Checkpoint: checkpoint,
	}, addrs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "themis-cql: %v\n", err)
		os.Exit(1)
	}
	defer ctrl.CloseAll()

	// On any error after connecting, stop the federation before exiting:
	// os.Exit skips defers, and the documented workflow backgrounds
	// themis-node processes that should not outlive a failed session.
	fail := func(code int, err error) {
		fmt.Fprintf(os.Stderr, "themis-cql: %v\n", err)
		ctrl.Shutdown()
		os.Exit(code)
	}

	place, err := ctrl.AutoPlace(fragments)
	if err != nil {
		fail(2, err)
	}
	q, err := ctrl.DeployCQL(queryText, fragments, dataset, rate, batchesPerSec, place)
	if err != nil {
		fail(2, err)
	}
	fmt.Printf("themis-cql: deployed %q as query %d: fragment→node %v over %d live nodes\n",
		queryText, q, place, ctrl.NumNodes())

	if !quiet {
		// Stream the coordinator's result-SIC estimate about once a second.
		var lastPrint stream.Time
		ctrl.OnSIC(func(q themis.QueryID, now stream.Time, v float64) {
			if now-lastPrint < 1000 {
				return
			}
			lastPrint = now
			fmt.Printf("t=%6.2fs  q%d  result-SIC=%.4f\n", float64(now)/1000, q, v)
		})
	}

	// Arm the churn schedule just before the run starts; each timer fires
	// on the controller concurrently with the broadcast loop (Submit and
	// Retract are mid-run-safe by design).
	var timers []*time.Timer
	for _, s := range submits {
		s := s
		timers = append(timers, time.AfterFunc(s.at, func() {
			q, err := ctrl.Submit(s.cql, fragments, dataset, rate, batchesPerSec, nil)
			if err != nil {
				fmt.Fprintf(os.Stderr, "themis-cql: submit at %v: %v\n", s.at, err)
				return
			}
			fmt.Printf("t=%6.2fs  submitted %q as query %d\n", s.at.Seconds(), s.cql, q)
		}))
	}
	for _, r := range retracts {
		r := r
		timers = append(timers, time.AfterFunc(r.at, func() {
			if err := ctrl.Retract(r.q); err != nil {
				fmt.Fprintf(os.Stderr, "themis-cql: retract at %v: %v\n", r.at, err)
				return
			}
			fmt.Printf("t=%6.2fs  retracted query %d\n", r.at.Seconds(), r.q)
		}))
	}
	defer func() {
		for _, t := range timers {
			t.Stop()
		}
	}()

	res, err := ctrl.Run(duration, warmup)
	if err != nil {
		fail(1, err)
	}

	fmt.Printf("\nnetworked run over %d nodes (%s placement)\n", ctrl.NumNodes(), placement)
	for _, rec := range res.Recoveries {
		mode := ""
		if rec.Restored {
			mode = " (restored from checkpoint)"
		}
		fmt.Printf("recovered from failure of node %s at t=%.2fs: re-placed queries %v in %v%s\n",
			rec.Node, rec.At.Seconds(), rec.Queries, rec.Took, mode)
	}
	qids := make([]themis.QueryID, 0, len(res.PerQuery))
	for id := range res.PerQuery {
		qids = append(qids, id)
	}
	sort.Slice(qids, func(i, j int) bool { return qids[i] < qids[j] })
	for _, id := range qids {
		suffix := ""
		for _, rec := range res.Recoveries {
			for _, rq := range rec.Queries {
				if rq == id && !rec.Restored {
					// A checkpoint-restored query carried its accounting
					// through the failure — no epoch to call out.
					suffix = "   (post-recovery epoch)"
				}
			}
		}
		fmt.Printf("query %d mean SIC: %.3f   (1.0 = perfect processing)%s\n", id, res.PerQuery[id], suffix)
	}
	fmt.Printf("fairness (Jain): %.3f\n", res.Jain)
	for _, ns := range res.Nodes {
		fmt.Printf("node %-8s tuples: %d arrived, %d shed (%.0f%%), %d shedder invocations\n",
			ns.Node, ns.ArrivedTuples, ns.ShedTuples,
			100*float64(ns.ShedTuples)/float64(max64(ns.ArrivedTuples, 1)),
			ns.ShedInvocations)
		if ns.DroppedTuples > 0 {
			fmt.Printf("node %-8s dropped in transit: %d tuples, %.4f SIC mass (routing failures during churn)\n",
				ns.Node, ns.DroppedTuples, ns.DroppedSIC)
		}
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
