// Command themis-cql runs an ad-hoc CQL query against synthetic sources
// on a single THEMIS node and streams results — with their SIC values —
// to stdout. It is the quickest way to see fair shedding react to
// overload:
//
//	themis-cql -query 'Select Avg(t.v) From Src[Range 1 sec]' \
//	           -rate 400 -capacity 200 -duration 30s
//
// With capacity below the source rate the node sheds; every printed
// result line reports the window's value next to the SIC it was computed
// from, the user feedback loop of §1.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	themis "repro"
)

func main() {
	queryText := flag.String("query", "Select Avg(t.v) From Src[Range 1 sec]", "CQL query (Table 1 syntax)")
	dataset := flag.String("dataset", "gaussian", "source dataset: gaussian|uniform|exponential|mixed|planetlab")
	rate := flag.Float64("rate", 400, "tuples/sec per source")
	capacity := flag.Float64("capacity", 200, "node capacity in tuples/sec")
	duration := flag.Duration("duration", 30*time.Second, "simulated run length")
	quietFlag := flag.Bool("summary", false, "suppress per-result lines, print only the summary")
	flag.Parse()

	var ds themis.Dataset
	switch strings.ToLower(*dataset) {
	case "gaussian":
		ds = themis.Gaussian
	case "uniform":
		ds = themis.Uniform
	case "exponential":
		ds = themis.Exponential
	case "mixed":
		ds = themis.Mixed
	case "planetlab":
		ds = themis.PlanetLab
	default:
		fmt.Fprintf(os.Stderr, "themis-cql: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}

	plan, err := themis.ParseQuery(*queryText, themis.DefaultCatalog(ds))
	if err != nil {
		fmt.Fprintf(os.Stderr, "themis-cql: %v\n", err)
		os.Exit(2)
	}

	cfg := themis.Defaults()
	cfg.Duration = themis.Duration(duration.Milliseconds())
	cfg.Warmup = cfg.Duration / 5
	engine, node := themis.LocalTestbed(cfg, *capacity)
	qid, err := engine.DeployQuery(plan, []themis.NodeID{node}, *rate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "themis-cql: %v\n", err)
		os.Exit(1)
	}
	if !*quietFlag {
		engine.OnResult(qid, func(now themis.Time, tuples []themis.Tuple) {
			for _, t := range tuples {
				var vals []string
				for _, v := range t.V {
					vals = append(vals, fmt.Sprintf("%.3f", v))
				}
				fmt.Printf("t=%6.2fs  result=[%s]  tuple-SIC=%.5f\n",
					float64(now)/1000, strings.Join(vals, ", "), t.SIC)
			}
		})
	}

	res := engine.Run()
	ns := res.Nodes[0]
	fmt.Printf("\n%s (%s)\n", plan.Type, *queryText)
	fmt.Printf("mean SIC over run: %.3f   (1.0 = perfect processing)\n", res.Queries[0].MeanSIC)
	fmt.Printf("tuples: %d arrived, %d shed (%.0f%%), %d shedder invocations\n",
		ns.ArrivedTuples, ns.ShedTuples,
		100*float64(ns.ShedTuples)/float64(max64(ns.ArrivedTuples, 1)),
		ns.ShedInvocations)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
