// Command themis-bench regenerates the tables and figures of the THEMIS
// paper's evaluation (§7) and prints them as text series.
//
// Usage:
//
//	themis-bench [-scale quick|paper] [-seed N] [-run all|table1|fig6|
//	              fig7|fig8|fig9|fig10|fig11|fig12|fig13|fig14|sec75|
//	              sec76|stw|dynamic|ablation]
//
// The quick scale (default) shrinks durations and source rates so the
// whole suite finishes in well under a minute; the paper scale runs the
// full query counts. Shapes — who wins, by what factor, where trends
// bend — are preserved at both scales; see EXPERIMENTS.md.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/stream"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or paper")
	seed := flag.Int64("seed", 1, "root random seed")
	run := flag.String("run", "all", "comma-separated experiment list or 'all'")
	csvDir := flag.String("csv", "", "also write each experiment's series as CSV files into this directory")
	stepBench := flag.String("stepbench", "", "measure Engine.Step across worker counts and write the JSON comparison to this file")
	churnBench := flag.String("churnbench", "", "measure node-failure recovery time across STWs and write the JSON result to this file")
	allocBench := flag.String("allocbench", "", "measure per-step allocations on the pooled data path and write the JSON comparison to this file")
	queryBench := flag.String("querybench", "", "measure marginal per-query cost across sharing modes and write the JSON result to this file")
	netBench := flag.Bool("net", false, "with -querybench: also sweep a loopback networked federation (slower; adds the distributed share-index rows)")
	wireBench := flag.String("wirebench", "", "measure node→node wire throughput (per-batch flush vs coalesced vectored writes) and write the JSON result to this file")
	flag.Parse()

	if *wireBench != "" {
		r, err := experiments.WireBench(600)
		if err != nil {
			fmt.Fprintf(os.Stderr, "themis-bench: wirebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(r.Render())
		buf, err := json.MarshalIndent(r, "", "  ")
		if err == nil {
			err = os.WriteFile(*wireBench, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "themis-bench: wirebench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *queryBench != "" {
		r := experiments.QueryBench(60)
		if *netBench {
			net, err := experiments.QueryBenchNet(6)
			if err != nil {
				fmt.Fprintf(os.Stderr, "themis-bench: querybench -net: %v\n", err)
				os.Exit(1)
			}
			r.Net = net
		}
		fmt.Println(r.Render())
		buf, err := json.MarshalIndent(r, "", "  ")
		if err == nil {
			err = os.WriteFile(*queryBench, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "themis-bench: querybench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *allocBench != "" {
		r := experiments.AllocBench(400)
		fmt.Println(r.Render())
		buf, err := json.MarshalIndent(r, "", "  ")
		if err == nil {
			err = os.WriteFile(*allocBench, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "themis-bench: allocbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *churnBench != "" {
		r, err := experiments.ChurnRecovery([]stream.Duration{
			1 * stream.Second, 2 * stream.Second, 5 * stream.Second,
			10 * stream.Second, 20 * stream.Second,
		}, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "themis-bench: churnbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(r.Render())
		buf, err := json.MarshalIndent(r, "", "  ")
		if err == nil {
			err = os.WriteFile(*churnBench, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "themis-bench: churnbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *stepBench != "" {
		workers := []int{1, 2, 4, 8}
		for _, w := range workers {
			if w > runtime.NumCPU() {
				fmt.Fprintf(os.Stderr, "themis-bench: warning: measuring workers=%d on %d CPUs — rows beyond the core count report scheduling overhead, not parallel speedup\n",
					w, runtime.NumCPU())
				break
			}
		}
		r := experiments.StepBench(workers, 200)
		fmt.Println(r.Render())
		buf, err := json.MarshalIndent(r, "", "  ")
		if err == nil {
			err = os.WriteFile(*stepBench, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "themis-bench: stepbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var csv *experiments.CSVWriter
	if *csvDir != "" {
		var err error
		csv, err = experiments.NewCSVWriter(*csvDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "themis-bench: %v\n", err)
			os.Exit(1)
		}
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick
	case "paper":
		scale = experiments.Paper
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or paper)\n", *scaleFlag)
		os.Exit(2)
	}

	// export writes a result's CSV when -csv is set, tolerating nil.
	export := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "themis-bench: csv: %v\n", err)
		}
	}
	corr := func(name string, rs []*experiments.CorrResult) []renderer {
		if csv != nil {
			for _, r := range rs {
				export(r.CSV(csv, name+"_"+strings.ToLower(strings.ReplaceAll(r.QueryType, "-", ""))))
			}
		}
		return asRenderers(rs)
	}
	fair := func(name string, r *experiments.FairnessResult) []renderer {
		if csv != nil {
			export(r.CSV(csv, name))
		}
		return []renderer{r}
	}
	runners := []struct {
		name string
		fn   func() []renderer
	}{
		{"table1", func() []renderer { return []renderer{experiments.Table1Queries()} }},
		{"fig6", func() []renderer { return corr("fig6", experiments.Fig6(scale, *seed)) }},
		{"fig7", func() []renderer { return corr("fig7", experiments.Fig7(scale, *seed)) }},
		{"fig8", func() []renderer { return fair("fig8", experiments.Fig8(scale, *seed)) }},
		{"fig9", func() []renderer { return fair("fig9", experiments.Fig9(scale, *seed)) }},
		{"fig10", func() []renderer {
			r := experiments.Fig10(scale, *seed)
			if csv != nil {
				export(r.CSV(csv, "fig10"))
			}
			return []renderer{r}
		}},
		{"fig11", func() []renderer { return fair("fig11", experiments.Fig11(scale, *seed)) }},
		{"fig12", func() []renderer { return fair("fig12", experiments.Fig12(scale, *seed)) }},
		{"fig13", func() []renderer { return fair("fig13", experiments.Fig13(scale, *seed)) }},
		{"fig14", func() []renderer { return fair("fig14", experiments.Fig14(scale, *seed)) }},
		{"sec75", func() []renderer {
			r := experiments.Sec75(scale, *seed)
			if csv != nil {
				export(r.CSV(csv, "sec75"))
			}
			return []renderer{r}
		}},
		{"sec76", func() []renderer {
			r := experiments.Sec76(scale, *seed)
			if csv != nil {
				export(r.CSV(csv, "sec76"))
			}
			return []renderer{r}
		}},
		{"stw", func() []renderer {
			r := experiments.STW(scale, *seed)
			if csv != nil {
				export(r.CSV(csv, "stw"))
			}
			return []renderer{r}
		}},
		{"dynamic", func() []renderer {
			r, err := experiments.DynamicWorkload(scale, *seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "themis-bench: dynamic: %v\n", err)
				os.Exit(1)
			}
			return []renderer{r}
		}},
		{"ablation", func() []renderer {
			r := experiments.Ablation(scale, *seed)
			if csv != nil {
				export(r.CSV(csv, "ablation"))
			}
			return []renderer{r}
		}},
	}

	want := map[string]bool{}
	if *run != "all" {
		for _, n := range strings.Split(*run, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}
	ranAny := false
	for _, r := range runners {
		if *run != "all" && !want[r.name] {
			continue
		}
		ranAny = true
		start := time.Now()
		outs := r.fn()
		fmt.Printf("=== %s (scale=%s, %.1fs) ===\n", r.name, scale.Name, time.Since(start).Seconds())
		for _, o := range outs {
			fmt.Println(o.Render())
		}
	}
	if !ranAny {
		fmt.Fprintf(os.Stderr, "no experiment matched -run=%s\n", *run)
		os.Exit(2)
	}
}

// renderer is anything that prints itself as a text table.
type renderer interface{ Render() string }

// asRenderers adapts a CorrResult slice.
func asRenderers(rs []*experiments.CorrResult) []renderer {
	out := make([]renderer, len(rs))
	for i, r := range rs {
		out[i] = r
	}
	return out
}
