// Command themis-node runs one THEMIS federation node as a TCP service.
// A controller (see examples/federation or internal/transport.Controller)
// connects to deploy query fragments, start processing and collect
// results; peer nodes connect to deliver derived tuple batches.
//
// Usage:
//
//	themis-node -listen 127.0.0.1:7101 -capacity 4000 -policy balance-sic
//
// The node exits when the controller sends a stop message (after
// delivering its final stats) or when the process is interrupted.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/transport"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7101", "TCP listen address")
	capacity := flag.Float64("capacity", 4000, "processing capacity in tuples/sec")
	policy := flag.String("policy", "balance-sic", "shedding policy: balance-sic or random")
	name := flag.String("name", "", "node name for logs and stats (defaults to the listen address)")
	seed := flag.Int64("seed", 1, "random seed for shedding decisions")
	quiet := flag.Bool("quiet", false, "suppress per-event logging")
	flag.Parse()

	if *name == "" {
		*name = *listen
	}
	srv, err := transport.NewNodeServer(transport.NodeServerConfig{
		Name:           *name,
		Addr:           *listen,
		CapacityPerSec: *capacity,
		Policy:         *policy,
		Seed:           *seed,
		Quiet:          *quiet,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "themis-node: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("themis-node %s listening on %s (capacity %.0f tuples/sec, %s shedding)\n",
		*name, srv.Addr(), *capacity, *policy)

	// SIGTERM (plain `kill`, the README's churn example) closes the
	// server like SIGINT does: connections sever immediately, so the
	// controller detects the death and re-places this node's fragments
	// without waiting for the heartbeat timeout.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
		srv.Close()
	case <-srv.Stopped():
		// Controller-initiated stop: stats are already delivered.
	}
}
