// Command themis-vet is the static-analysis driver for the themis
// invariants (DESIGN.md §11): it runs the releasecheck, determinism,
// allochygiene, lockorder and themisdirective analyzers over the module
// and exits nonzero if any diagnostic fires.
//
// Usage:
//
//	go run ./cmd/themis-vet ./...            # analyze packages
//	go run ./cmd/themis-vet -genroots        # regenerate the allochygiene hot set
//	go run ./cmd/themis-vet -genroots -check # verify the hot set is current (CI)
//
// Analyzer flags are exposed with an <analyzer>. prefix, e.g.
// -determinism.packages=... — the defaults encode this repository's
// invariants and are what CI runs.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis/allochygiene"
	"repro/internal/analysis/determinism"
	"repro/internal/analysis/load"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/releasecheck"
	"repro/internal/analysis/run"
	"repro/internal/analysis/themisdirective"
	"repro/internal/xtools/go/analysis"
)

var suite = []*analysis.Analyzer{
	releasecheck.Analyzer,
	determinism.Analyzer,
	allochygiene.Analyzer,
	lockorder.Analyzer,
	themisdirective.Analyzer,
}

func main() {
	genroots := flag.Bool("genroots", false, "regenerate internal/analysis/allochygiene/hotset_gen.go from the call graph")
	check := flag.Bool("check", false, "with -genroots: verify the generated file is current instead of writing it")
	for _, a := range suite {
		a := a
		a.Flags.VisitAll(func(f *flag.Flag) {
			flag.Var(f.Value, a.Name+"."+f.Name, f.Usage)
		})
	}
	flag.Parse()

	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}

	if *genroots {
		if err := genRoots(root, *check); err != nil {
			fatal(err)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := load.Module(root, patterns...)
	if err != nil {
		fatal(err)
	}
	for _, pkg := range res.Packages {
		for _, te := range pkg.TypeErrors {
			fatal(fmt.Errorf("type error in %s: %v", pkg.ImportPath, te))
		}
	}
	diags, err := run.Analyzers(res.Fset, res.Packages, suite)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Printf("%s\n", d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "themis-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func genRoots(root string, check bool) error {
	res, err := load.Module(root, "./...")
	if err != nil {
		return err
	}
	want, err := allochygiene.GenerateHotSet(res)
	if err != nil {
		return err
	}
	path := filepath.Join(root, "internal", "analysis", "allochygiene", "hotset_gen.go")
	if check {
		have, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if !bytes.Equal(have, want) {
			return fmt.Errorf("%s is stale: run `go generate ./internal/analysis/allochygiene`", path)
		}
		fmt.Println("themis-vet: hot set is up to date")
		return nil
	}
	if err := os.WriteFile(path, want, 0o644); err != nil {
		return err
	}
	fmt.Printf("themis-vet: wrote %s\n", path)
	return nil
}

// findModuleRoot walks up from the working directory to the go.mod —
// go:generate runs tools from the package directory, not the root.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("themis-vet: no go.mod found above the working directory")
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "themis-vet: %v\n", err)
	os.Exit(3)
}
