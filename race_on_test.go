//go:build race

package themis_test

// raceEnabled reports whether the race detector instruments this build;
// wall-clock budget tests skip under it (instrumentation inflates step
// time several-fold), while the plain benchmark-smoke CI stage still
// enforces them.
const raceEnabled = true
